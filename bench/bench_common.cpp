#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/provenance.hpp"
#include "protocols/factory.hpp"
#include "service/coordinator.hpp"
#include "service/worker.hpp"

namespace pp::bench {
namespace {

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

}  // namespace

Context init(int argc, char** argv, const std::string& experiment_id,
             const std::string& claim) {
  // Worker-mode re-exec hook: when the sharded service spawned this
  // process as a shard, run the worker loop and exit before any bench
  // setup (banner, BENCH log truncation, thread pool) happens.
  service::maybe_run_worker(argc, argv);

  Context ctx;
  ctx.trials = std::strtoull(env_or("POPRANK_TRIALS", "0"), nullptr, 10);
  ctx.seed = std::strtoull(env_or("POPRANK_SEED", "0"), nullptr, 10);
  if (ctx.seed == 0) ctx.seed = kDefaultRootSeed;
  ctx.threads = std::strtoull(env_or("POPRANK_THREADS", "0"), nullptr, 10);
  ctx.max_n = std::strtoull(env_or("POPRANK_MAX_N", "0"), nullptr, 10);
  ctx.csv_dir = env_or("POPRANK_CSV_DIR", "");
  ctx.cache_dir = env_or("POPRANK_CACHE_DIR", "");
  ctx.service_workers =
      std::strtoull(env_or("POPRANK_SERVICE_WORKERS", "0"), nullptr, 10);
  if (std::strcmp(env_or("POPRANK_QUICK", "0"), "1") == 0) {
    ctx.size = Context::Size::kQuick;
  }
  if (std::strcmp(env_or("POPRANK_FULL", "0"), "1") == 0) {
    ctx.size = Context::Size::kFull;
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trials=", 9) == 0) {
      ctx.trials = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      ctx.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      ctx.threads = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--max-n=", 8) == 0) {
      ctx.max_n = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      ctx.csv_dir = a + 6;
    } else if (std::strncmp(a, "--cache-dir=", 12) == 0) {
      ctx.cache_dir = a + 12;
    } else if (std::strncmp(a, "--service-workers=", 18) == 0) {
      ctx.service_workers = std::strtoull(a + 18, nullptr, 10);
    } else if (std::strcmp(a, "--quick") == 0) {
      ctx.size = Context::Size::kQuick;
    } else if (std::strcmp(a, "--full") == 0) {
      ctx.size = Context::Size::kFull;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (known: --trials= --seed= --threads= "
                   "--max-n= --csv= --cache-dir= --service-workers= "
                   "--quick --full)\n",
                   a);
      std::exit(2);
    }
  }
  if (ctx.service_workers != 0 && ctx.cache_dir.empty()) {
    std::fprintf(stderr,
                 "--service-workers needs --cache-dir (the chunk cache is "
                 "how shards hand results back)\n");
    std::exit(2);
  }
  ctx.pool = std::make_shared<ThreadPool>(ctx.threads);
  // Truncates the file and stamps a per-run id: a BENCH file always
  // describes exactly one run (runner/bench_log.hpp, tested in
  // tests/test_bench_log.cpp).
  BenchLog::RunInfo info;
  info.seed = ctx.seed;
  info.threads = ctx.pool->size();
  // The *effective* cap (size_cap folds in the quick-mode default), so
  // the regression gate can excuse baseline points above it; "uncapped"
  // is encoded as 0 rather than ~0 to keep the JSON readable.
  const u64 cap = ctx.size_cap();
  info.max_n = cap == ~static_cast<u64>(0) ? 0 : cap;
  info.size = ctx.quick() ? "quick" : (ctx.full() ? "full" : "standard");
  ctx.bench_log = BenchLog::open(ctx.csv_dir, experiment_id, info);
  std::printf("=======================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("root seed %llu | %s sweep%s | runner threads %s\n",
              static_cast<unsigned long long>(ctx.seed),
              ctx.quick() ? "quick" : (ctx.full() ? "full" : "standard"),
              ctx.trials ? " | trials overridden" : "",
              ctx.threads ? std::to_string(ctx.threads).c_str() : "auto");
  if (!ctx.cache_dir.empty()) {
    std::printf("service: cache %s | workers %llu\n", ctx.cache_dir.c_str(),
                static_cast<unsigned long long>(ctx.service_workers));
  }
  std::printf("=======================================================\n\n");
  return ctx;
}

TrialSet run_trials_ctx(const Context& ctx, const TrialSpec& spec,
                        const RunnerOptions& opt) {
  if (ctx.cache_dir.empty()) return run_trials(spec, opt, *ctx.pool);
  if (!obs::spec_is_replayable(spec)) {
    // The service ships specs to worker processes via the canonical
    // provenance serialisation; an explicit factory / custom generator
    // cannot travel that way.  Reported, never silent.
    std::fprintf(stderr,
                 "[service] %s: spec not replayable, running in-process\n",
                 spec.label.c_str());
    return run_trials(spec, opt, *ctx.pool);
  }
  service::ServiceOptions sopt;
  sopt.workers = ctx.service_workers;
  sopt.cache_dir = ctx.cache_dir;
  return service::run_trials_sharded(spec, opt, sopt);
}

TrialSpec make_spec(const std::string& label, u64 n,
                    const ProtocolFactory& factory, const ConfigGenerator& gen,
                    u64 max_interactions) {
  TrialSpec spec;
  spec.label = label;
  spec.n = n;
  spec.factory = factory;
  spec.init = gen;
  spec.max_interactions = max_interactions;
  return spec;
}

std::vector<u64> capped_sizes(const Context& ctx, std::vector<u64> sizes) {
  const u64 cap = ctx.size_cap();
  std::vector<u64> kept;
  kept.reserve(sizes.size());
  for (const u64 n : sizes) {
    if (n <= cap) kept.push_back(n);
  }
  return kept;
}

RunnerOptions runner_options(const Context& ctx, u64 trials) {
  RunnerOptions opt;
  opt.trials = trials;
  opt.threads = ctx.threads;
  opt.master_seed = ctx.seed;
  opt.keep_records = true;
  return opt;
}

void run_scale_section(
    const Context& ctx, const std::string& title,
    const std::string& label_prefix, const std::string& protocol,
    const std::vector<u64>& sizes,
    const std::function<std::vector<SchedulerSpec>(u64)>& menu) {
  if (sizes.empty()) return;
  const u64 trials = ctx.trials_or(ctx.quick() ? 2 : 3);
  Table t(title + ", " + protocol + ", parallel-time budget 5 (" +
          std::to_string(trials) + " trials/point)");
  t.headers({"scheduler", "n", "interactions", "prod. steps", "trials/s",
             "wall s"});
  for (const u64 raw_n : sizes) {
    // Rounded per protocol (line-of-traps wants its canonical 3m³(m+1)
    // populations) — AFTER the caller's cap filter, so a rounded size may
    // sit slightly below the nominal 10^4/10^5 grid point.
    const u64 n = preferred_population(protocol, raw_n);
    for (const SchedulerSpec& sched : menu(n)) {
      const std::string sched_name = sched.to_string();
      // Registry protocol + named init rather than an opaque factory
      // lambda: resolve_factory() builds the identical protocol, and the
      // point's provenance-manifest record stays replayable.
      TrialSpec spec;
      spec.label = label_prefix + sched_name;
      spec.protocol = protocol;
      spec.n = n;
      spec.init = gen_uniform_random();
      spec.max_interactions = 5 * n;
      spec.engine = EngineKind::kScheduled;
      spec.scheduler = sched;
      const TrialSet set =
          run_trials_ctx(ctx, spec, runner_options(ctx, trials));
      warn_if_invalid(set, spec.label);
      emit_bench_json(ctx, spec, n, 0, set);
      t.row()
          .cell(sched_name)
          .cell(n)
          .cell(set.stats.interactions.mean(), 0)
          .cell(set.stats.productive_steps.mean(), 0)
          .cell(set.trials_per_sec, 4)
          .cell(set.wall_seconds, 3);
    }
  }
  emit(ctx, t);
}

void emit_bench_json(const Context& ctx, const std::string& point, u64 n,
                     double param, const TrialSet& set) {
  ctx.bench_log.append_point(point, n, param, set);
}

void emit_bench_json(const Context& ctx, const TrialSpec& spec, u64 n,
                     double param, const TrialSet& set) {
  ctx.bench_log.append_point(spec.label, n, param, set, &spec);
}

void warn_if_invalid(const TrialSet& set, const std::string& label) {
  if (set.stats.invalid != 0) {
    std::fprintf(stderr, "WARNING: %llu invalid outcomes at %s\n",
                 static_cast<unsigned long long>(set.stats.invalid),
                 label.c_str());
  }
}

SweepPoint run_point(const Context& ctx, const std::string& label, u64 n,
                     double param, const ProtocolFactory& factory,
                     const ConfigGenerator& gen, u64 trials,
                     u64 max_interactions) {
  const TrialSpec spec = make_spec(label, n, factory, gen, max_interactions);
  const TrialSet set = run_trials_ctx(ctx, spec, runner_options(ctx, trials));
  SweepPoint p;
  p.n = n;
  p.param = param;
  p.time = set.summary();
  p.timeouts = set.stats.timeouts;
  p.wall_seconds = set.wall_seconds;
  p.trials_per_sec = set.trials_per_sec;
  p.threads = set.threads;
  warn_if_invalid(set, label);
  emit_bench_json(ctx, spec, n, param, set);
  return p;
}

void add_row(Table& table, const SweepPoint& p, bool with_param) {
  auto row = table.row();
  row.cell(p.n);
  if (with_param) row.cell(p.param, 6);
  row.cell(p.time.mean, 5)
      .cell(p.time.ci95_halfwidth(), 3)
      .cell(p.time.median, 5)
      .cell(p.time.q95, 5)
      .cell(p.timeouts);
}

PowerFit report_fit(const std::vector<SweepPoint>& points,
                    const std::string& series_name,
                    const std::string& expectation) {
  std::vector<double> x, y;
  for (const auto& p : points) {
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.time.mean);
  }
  const PowerFit f = fit_power(x, y);
  std::printf("fit  [%s]: %s\n", series_name.c_str(), f.to_string().c_str());
  std::printf("paper[%s]: %s\n\n", series_name.c_str(), expectation.c_str());
  return f;
}

void emit(const Context& ctx, Table& table) { table.print(ctx.csv_dir); }

}  // namespace pp::bench
