// E2 — Theorem 1: the state-optimal ring-of-traps protocol stabilises from
// a k-distant configuration in O(k * n^{3/2}) parallel time whp.
//
// Three series:
//   (a) fixed n, sweep k          -> time grows roughly linearly in k;
//   (b) fixed k = 1, sweep n      -> fitted exponent ~ 1.5;
//   (c) crossover vs AG at fixed n: the ring wins for small k and loses
//       around k ~ sqrt(n) (AG's Θ(n^2) is k-insensitive).
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 7);

  // Runner throughput across every measurement point (footer line).
  double total_wall = 0;
  u64 total_trials = 0;
  u64 pool_threads = 1;
  const auto track = [&](const SweepPoint& p) {
    total_wall += p.wall_seconds;
    total_trials += trials;
    pool_threads = p.threads;
    return p;
  };

  // --- (a) fixed n, k sweep -------------------------------------------
  const u64 n_fixed = ctx.quick() ? 1056 : 2256;  // 32*33, 47*48
  std::vector<u64> ks{1, 2, 4, 8, 16, 32, 64};
  if (ctx.full()) ks.push_back(128);
  {
    Table t("E2a ring-of-traps, k sweep at n=" + std::to_string(n_fixed));
    t.headers({"k", "mean time", "ci95", "median", "q95", "timeouts",
               "time/(k*n^1.5)"});
    const double n15 = std::pow(static_cast<double>(n_fixed), 1.5);
    for (const u64 k : ks) {
      const SweepPoint p = track(run_point(
          ctx, "e2a-k" + std::to_string(k), n_fixed, static_cast<double>(k),
          [n_fixed] { return make_protocol("ring-of-traps", n_fixed); },
          gen_k_distant(k), trials));
      t.row()
          .cell(k)
          .cell(p.time.mean, 5)
          .cell(p.time.ci95_halfwidth(), 3)
          .cell(p.time.median, 5)
          .cell(p.time.q95, 5)
          .cell(p.timeouts)
          .cell(p.time.mean / (static_cast<double>(k) * n15), 3);
    }
    emit(ctx, t);
    std::printf(
        "paper[E2a]: O(k n^1.5) => time/(k n^1.5) bounded; sub-linearity in"
        " k at small k is constant-factor slack, not a contradiction.\n\n");
  }

  // --- (b) fixed k = 1, n sweep ----------------------------------------
  {
    std::vector<u64> sizes{240, 506, 1056, 2256, 4556};  // m(m+1)
    if (ctx.quick()) sizes = {110, 240, 506, 1056};
    if (ctx.full()) sizes.push_back(9120);  // 95*96
    Table t("E2b ring-of-traps, n sweep at k=1");
    t.headers({"n", "mean time", "ci95", "median", "q95", "timeouts",
               "time/n^1.5"});
    std::vector<SweepPoint> pts;
    for (const u64 n : sizes) {
      const SweepPoint p = track(run_point(
          ctx, "e2b-n" + std::to_string(n), n, 1.0,
          [n] { return make_protocol("ring-of-traps", n); },
          gen_k_distant(1), trials));
      pts.push_back(p);
      t.row()
          .cell(p.n)
          .cell(p.time.mean, 5)
          .cell(p.time.ci95_halfwidth(), 3)
          .cell(p.time.median, 5)
          .cell(p.time.q95, 5)
          .cell(p.timeouts)
          .cell(p.time.mean / std::pow(static_cast<double>(n), 1.5), 3);
    }
    emit(ctx, t);
    report_fit(pts, "ring k=1", "O(n^1.5) => exponent ~ 1.5");
  }

  // --- (c) crossover against AG ----------------------------------------
  {
    const u64 n = ctx.quick() ? 506 : 1056;
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    Table t("E2c ring vs AG crossover at n=" + std::to_string(n) +
            " (sqrt n ~ " + std::to_string(static_cast<u64>(sqrt_n)) + ")");
    t.headers({"k", "ring mean", "ag mean", "ring/ag"});
    for (const u64 k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      if (k >= n / 2) break;
      const SweepPoint ring = track(run_point(
          ctx, "e2c-ring-k" + std::to_string(k), n, static_cast<double>(k),
          [n] { return make_protocol("ring-of-traps", n); },
          gen_k_distant(k), trials));
      const SweepPoint ag = track(run_point(
          ctx, "e2c-ag-k" + std::to_string(k), n, static_cast<double>(k),
          [n] { return make_protocol("ag", n); }, gen_k_distant(k), trials));
      t.row()
          .cell(k)
          .cell(ring.time.mean, 5)
          .cell(ag.time.mean, 5)
          .cell(ring.time.mean / ag.time.mean, 3);
    }
    emit(ctx, t);
    std::printf(
        "paper[E2c]: ring wins (ratio < 1) while k = o(sqrt n); AG's time "
        "is k-insensitive at Theta(n^2).\n");
  }
  std::printf(
      "\nrunner: %llu trials in %.2f s (%.1f trials/s) on %llu threads\n",
      static_cast<unsigned long long>(total_trials), total_wall,
      total_wall > 0 ? static_cast<double>(total_trials) / total_wall : 0.0,
      static_cast<unsigned long long>(pool_threads));
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E2: state-optimal k-distant ranking (Theorem 1)",
      "Paper claim: the ring-of-traps protocol self-stabilises from any "
      "k-distant configuration in O(min(k n^1.5, n^2 log^2 n)) whp.");
  return pp::bench::run(ctx);
}
