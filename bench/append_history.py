#!/usr/bin/env python3
"""Appends one per-commit summary row to the bench/history.jsonl
trajectory from a directory of BENCH_*.json records.

The regression gate (check_bench_regression.py) answers "did THIS commit
regress against the committed baselines?"; history.jsonl answers "what
has the trajectory looked like over time?" — one JSON line per commit,
each carrying the deterministic per-point means plus coarse throughput,
so a plotting script (or a plain `jq`) can draw mean-time and trials/s
series across the repo's history without re-running anything.

A row looks like:
  {"kind": "history", "sha": "...", "utc": "...", "experiments": [
     {"experiment": "...", "points": N, "trials": N,
      "wall_seconds": S, "points_detail": [
        {"point": "...", "n": N, "param": P, "trials": T,
         "mean_parallel_time": M, "timeouts": K,
         "trials_per_sec": R}, ...]}]}

Appending is idempotent per sha: re-running on the same commit replaces
that sha's row instead of duplicating it.  CI appends the row for every
push and uploads the updated file as a build artifact; committing the
refreshed file back (alongside baseline refreshes) is a maintainer
action, which keeps the committed trajectory append-only and tied to
intentional changes.

Stdlib-only on purpose, like every other bench/*.py tool.

Usage:
  append_history.py --bench-dir build --sha $GITHUB_SHA
                    [--history bench/history.jsonl] [--utc TIMESTAMP]
"""

import argparse
import datetime
import glob
import json
import os
import sys


def load_bench(path):
    """Returns (experiment_id, point_records) for one BENCH_*.json."""
    experiment = None
    points = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "run":
                experiment = rec.get("experiment")
            elif rec.get("kind") == "point":
                points.append(rec)
    return experiment, points


def summarise(path):
    experiment, points = load_bench(path)
    if experiment is None or not points:
        return None
    detail = [
        {
            "point": p["point"],
            "n": p["n"],
            "param": p["param"],
            "trials": p["trials"],
            "mean_parallel_time": p["mean_parallel_time"],
            "timeouts": p["timeouts"],
            "trials_per_sec": p["trials_per_sec"],
        }
        for p in points
    ]
    detail.sort(key=lambda d: (d["point"], d["n"], d["param"]))
    return {
        "experiment": experiment,
        "points": len(points),
        "trials": sum(p["trials"] for p in points),
        "wall_seconds": round(sum(p["wall_seconds"] for p in points), 3),
        "points_detail": detail,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir", default=".")
    ap.add_argument("--sha", required=True)
    ap.add_argument(
        "--history",
        default=os.path.join(os.path.dirname(__file__), "history.jsonl"),
    )
    ap.add_argument(
        "--utc",
        default=None,
        help="ISO timestamp override (default: now, UTC)",
    )
    args = ap.parse_args()

    bench_files = sorted(glob.glob(os.path.join(args.bench_dir, "BENCH_*.json")))
    bench_files = [p for p in bench_files if not p.endswith(".manifest.json")]
    experiments = [s for s in map(summarise, bench_files) if s is not None]
    if not experiments:
        sys.exit(f"append_history: no BENCH records in {args.bench_dir}")

    utc = args.utc or datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )
    row = {
        "kind": "history",
        "sha": args.sha,
        "utc": utc,
        "experiments": sorted(experiments, key=lambda e: e["experiment"]),
    }

    rows = []
    if os.path.exists(args.history):
        with open(args.history, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
    # Idempotent per sha: a re-run of the same commit replaces its row.
    rows = [r for r in rows if r.get("sha") != args.sha]
    rows.append(row)
    with open(args.history, "w", encoding="utf-8") as f:
        for r in rows:
            f.write(json.dumps(r, separators=(",", ":"), sort_keys=True))
            f.write("\n")
    print(
        f"append_history: {args.history} now {len(rows)} rows "
        f"({sum(e['points'] for e in row['experiments'])} points @ "
        f"{args.sha[:12]})"
    )


if __name__ == "__main__":
    main()
