#!/usr/bin/env python3
"""Self-test for the bench-regression gate (check_bench_regression.py).

The gate is the only line of defence between a semantic perf change and
a green CI run, so its own failure modes are pinned here by driving the
real script as a subprocess over synthesized BENCH files.  The headline
regression: a baseline point that vanished from the current run used to
be *printed* but never *failed* — a renamed label or dropped sweep size
silently shrank the gate's coverage.  Now it fails with a "missing
point" diagnostic unless the point sits above the current run's
recorded --max-n cap (that subset was legitimately never attempted).

Stdlib-only, like the gate itself; registered under `ctest -L lint`.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def write_bench(dir_, name, points, max_n=0):
    """Writes a minimal BENCH_<name>.json: run header + point records."""
    path = os.path.join(dir_, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps({"kind": "run", "experiment": name,
                            "run_id": 1, "seed": 42, "threads": 1,
                            "max_n": max_n, "size": "quick"}) + "\n")
        for (label, n, mean) in points:
            f.write(json.dumps({
                "kind": "point", "run_id": 1, "point": label, "n": n,
                "param": 0, "trials": 3, "wall_seconds": 0.1,
                "trials_per_sec": 30.0, "mean_parallel_time": mean,
                "timeouts": 0, "invalid": 0}) + "\n")
    return path


def run_gate(bench_dir, baseline_dir, *extra):
    proc = subprocess.run(
        [sys.executable, GATE, "--bench-dir", bench_dir,
         "--baseline-dir", baseline_dir, *extra],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(cond, what, output):
    if not cond:
        sys.exit(f"FAIL: {what}\n--- gate output ---\n{output}")
    print(f"ok: {what}")


def main():
    full = [("s1-a", 100, 1.5), ("s1-a", 100000, 9.0), ("s1-b", 100, 2.0)]

    with tempfile.TemporaryDirectory() as tmp:
        cur_dir = os.path.join(tmp, "cur")
        base_dir = os.path.join(tmp, "base")
        os.makedirs(cur_dir)

        # Seed the baseline from a full run via the gate's own writer.
        write_bench(cur_dir, "t", full)
        code, out = run_gate(cur_dir, base_dir, "--update-baseline")
        expect(code == 0, "--update-baseline exits 0", out)
        expect(os.path.exists(os.path.join(base_dir, "BENCH_t.json")),
               "--update-baseline writes the baseline file", out)

        # Identical records pass.
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 0, "identical records pass the gate", out)

        # THE BUG: a vanished point (uncapped run) must fail, with a
        # diagnostic naming the point.
        write_bench(cur_dir, "t", [p for p in full if p[0] != "s1-b"])
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 1, "vanished point fails the gate", out)
        expect("missing point" in out and "s1-b" in out,
               "failure carries a 'missing point' diagnostic", out)

        # A vanished point ABOVE the current run's cap is excused …
        write_bench(cur_dir, "t",
                    [p for p in full if p[1] <= 1000], max_n=1000)
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 0, "point above current --max-n is excused", out)
        expect("above current --max-n" in out,
               "excused point is still reported as a note", out)

        # … but the cap does not excuse a vanished point UNDER it.
        write_bench(cur_dir, "t",
                    [p for p in full if p[0] != "s1-b" and p[1] <= 1000],
                    max_n=1000)
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 1 and "missing point" in out,
               "cap does not excuse a sub-cap vanished point", out)

        # New points (no baseline entry) never fail.
        write_bench(cur_dir, "t", full + [("s3-new", 500, 3.0)])
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 0, "new point without a baseline passes", out)

        # The original gate still works: an injected mean-time blowup
        # (> --factor) trips a regression failure.
        blown = [(l, n, m * 10 if l == "s1-a" and n == 100 else m)
                 for (l, n, m) in full]
        write_bench(cur_dir, "t", blown)
        code, out = run_gate(cur_dir, base_dir)
        expect(code == 1 and "mean parallel time" in out,
               "injected 10x mean-time regression still fails", out)

    print("check_bench_regression self-test: OK")


if __name__ == "__main__":
    main()
