#!/usr/bin/env python3
"""Docs-consistency gate: the operational docs must track the code.

Three checks, all computed from the sources (stdlib only, no build
needed), run under `ctest -L lint`:

  D1  Every POPRANK_* token referenced anywhere in src/, bench/ or
      CMakeLists.txt (environment variables and CMake options share the
      prefix) is documented in docs/RUNBOOK.md.  A knob someone added
      without a runbook row fails the gate.

  D2  Every scheduler name returned by scheduler_kind_name()
      (src/schedulers/scheduler.cpp) appears in the README's scheduler
      matrix (a table row mentioning the name in backticks).  A
      scheduler added to the enum without a matrix row fails the gate.

  D3  README.md links both docs/ARCHITECTURE.md and docs/RUNBOOK.md, so
      the documents stay discoverable from the front page.

Usage: check_docs_consistency.py [repo-root]
"""

import re
import sys
from pathlib import Path

TOKEN_RE = re.compile(r"POPRANK_[A-Z0-9_]+")
# `return "uniform";` lines inside scheduler_kind_name().
KIND_NAME_RE = re.compile(r'return "([a-z0-9-]+)";')


def collect_tokens(root: Path) -> set:
    tokens = set()
    files = [root / "CMakeLists.txt"]
    for sub in ("src", "bench"):
        files.extend(sorted((root / sub).rglob("*")))
    for path in files:
        if not path.is_file():
            continue
        if path.suffix not in {".hpp", ".cpp", ".h", ".py", ".txt"}:
            continue
        tokens.update(TOKEN_RE.findall(path.read_text(errors="replace")))
    return tokens


def scheduler_names(root: Path) -> list:
    text = (root / "src/schedulers/scheduler.cpp").read_text()
    # Scope the scan to the scheduler_kind_name function body: from its
    # signature to the first closing brace at column zero.
    start = text.index("scheduler_kind_name(SchedulerKind")
    end = text.index("\n}", start)
    names = KIND_NAME_RE.findall(text[start:end])
    return [n for n in names if n != "?"]


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parents[2]
    problems = []

    runbook_path = root / "docs/RUNBOOK.md"
    runbook = runbook_path.read_text() if runbook_path.is_file() else ""
    if not runbook:
        problems.append("D1: docs/RUNBOOK.md is missing")
    for token in sorted(collect_tokens(root)):
        if token not in runbook:
            problems.append(
                f"D1: {token} is referenced in the sources but not "
                "documented in docs/RUNBOOK.md")

    readme = (root / "README.md").read_text()
    matrix_rows = "\n".join(
        line for line in readme.splitlines() if line.startswith("| `"))
    for name in scheduler_names(root):
        if f"`{name}`" not in matrix_rows and f"`{name}[" not in matrix_rows:
            problems.append(
                f"D2: scheduler '{name}' (scheduler_kind_name) has no row "
                "in the README scheduler matrix")

    for doc in ("docs/ARCHITECTURE.md", "docs/RUNBOOK.md"):
        if doc not in readme:
            problems.append(f"D3: README.md does not link {doc}")
        if not (root / doc).is_file():
            problems.append(f"D3: {doc} is missing")

    if problems:
        for p in problems:
            print(p)
        print(f"\ndocs-consistency: {len(problems)} problem(s)")
        return 1
    print("docs-consistency: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
