#!/usr/bin/env python3
"""Self-test for poprank_lint — runs as `ctest -L lint` (pytest-free, plain
asserts, stdlib-only like the engine itself).

Three layers:
  1. Bad corpus: every fixture under tests/fixtures/bad/ must produce
     exactly its EXPECTED (rule, line) set — a rule regression (missed
     finding OR spurious extra) fails tier-1 like any other test.
  2. Good corpus: every fixture under tests/fixtures/good/ must be clean.
  3. Suppression round-trip: stripping the allow comments from the
     suppressed fixture must resurface the silenced findings at the same
     lines; plus targeted tokenizer checks (suppressions inside string
     literals don't count, `#else` of `#if PP_OBS` is the OFF build).
"""

import os
import re
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import poprank_lint  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "tests", "fixtures")

# fixture path (relative to fixtures/) -> exact expected [(rule, line), ...]
# (a list, not a set: line 26 of the R1 fixture legitimately carries two
# distinct findings — chrono and steady_clock).
EXPECTED = {
    "bad/src/core/bad_r1_rand.cpp": [
        ("R1", 9), ("R1", 10), ("R1", 15), ("R1", 16),
        ("R1", 21), ("R1", 22),
        ("R1", 26), ("R1", 26),  # chrono + steady_clock, distinct messages
    ],
    "bad/src/runner/bad_r2_unordered_iter.cpp": [
        ("R2", 13), ("R2", 16), ("R2", 19),
    ],
    "bad/src/schedulers/bad_r3_bare_obs.cpp": [
        ("R3", 8), ("R3", 9), ("R3", 10), ("R3", 14), ("R3", 18),
    ],
    "bad/src/core/bad_r4_header.hpp": [
        ("R4", 1), ("R4", 11), ("R4", 12),
    ],
    "bad/src/core/bad_r4_assert.cpp": [
        ("R4", 9), ("R4", 11), ("R4", 12),
    ],
    "bad/src/runner/bad_r5_float_accum.cpp": [
        ("R5", 11), ("R5", 12),
    ],
}

_failures = []


def check(ok, label, detail=""):
    tag = "ok" if ok else "FAIL"
    print(f"[{tag}] {label}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        _failures.append(label)


def findings_for(path):
    return poprank_lint.lint_paths([path])


def as_pairs(findings):
    return sorted((f.rule, f.line) for f in findings)


def test_bad_corpus():
    for rel, expected in sorted(EXPECTED.items()):
        path = os.path.join(FIXTURES, rel)
        got = as_pairs(findings_for(path))
        want = sorted(expected)
        check(got == want, f"bad corpus: {rel}",
              f"expected {want}, got {got}")


def test_bad_corpus_is_exhaustive():
    on_disk = set()
    for root, _, files in os.walk(os.path.join(FIXTURES, "bad")):
        for f in files:
            rel = os.path.relpath(os.path.join(root, f), FIXTURES)
            on_disk.add(rel.replace(os.sep, "/"))
    check(on_disk == set(EXPECTED),
          "bad corpus: every fixture file has an EXPECTED entry",
          f"unlisted={sorted(on_disk - set(EXPECTED))} "
          f"missing={sorted(set(EXPECTED) - on_disk)}")
    rules_covered = {rule for exp in EXPECTED.values() for rule, _ in exp}
    all_rules = {r.rule_id for r in poprank_lint.ALL_RULES}
    check(rules_covered == all_rules,
          "bad corpus: every rule R1-R5 has a failing fixture",
          f"covered={sorted(rules_covered)} all={sorted(all_rules)}")


def test_good_corpus():
    findings = findings_for(os.path.join(FIXTURES, "good"))
    check(not findings, "good corpus: zero findings",
          "; ".join(str(f) for f in findings))


def test_suppression_round_trip():
    src = os.path.join(FIXTURES, "good", "src", "runner",
                       "good_suppressed.cpp")
    clean = findings_for(src)
    check(not clean, "suppressed fixture: clean with allow comments",
          "; ".join(str(f) for f in clean))
    with open(src, encoding="utf-8") as f:
        text = f.read()
    stripped = re.sub(r"poprank-lint:\s*allow[^)]*\)", "(allow stripped)",
                      text)
    assert stripped != text, "fixture lost its suppression comments"
    tmpdir = tempfile.mkdtemp(prefix="poprank_lint_")
    try:
        # Reproduce the src/runner/ shape so path-scoped rules still apply.
        stripped_path = os.path.join(tmpdir, "src", "runner", "stripped.cpp")
        os.makedirs(os.path.dirname(stripped_path))
        with open(stripped_path, "w", encoding="utf-8") as f:
            f.write(stripped)
        got = as_pairs(findings_for(stripped_path))
        check(got == [("R1", 16), ("R5", 11)],
              "suppression round-trip: findings reappear once stripped",
              f"got {got}")
    finally:
        shutil.rmtree(tmpdir)


def _lint_snippet(tmpdir, relpath, text):
    path = os.path.join(tmpdir, *relpath.split("/"))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return as_pairs(findings_for(path))


def test_tokenizer_edges():
    tmpdir = tempfile.mkdtemp(prefix="poprank_lint_")
    try:
        # A suppression spelled inside a string literal is not a comment and
        # must not suppress.
        got = _lint_snippet(tmpdir, "src/core/in_string.cpp",
                            'const char* s = "poprank-lint: allow(R1)";\n'
                            "long t = time(nullptr);\n")
        check(got == [("R1", 2)],
              "tokenizer: allow() inside a string literal does not suppress",
              f"got {got}")
        # Banned identifiers inside comments and strings are not code.
        got = _lint_snippet(tmpdir, "src/core/in_comment.cpp",
                            "// std::rand() in a comment is fine\n"
                            'const char* s = "std::rand()";\n')
        check(got == [], "tokenizer: comments/strings are not code tokens",
              f"got {got}")
        # allow-file silences the whole file.
        got = _lint_snippet(tmpdir, "src/core/allow_file.cpp",
                            "// poprank-lint: allow-file(R1): fixture\n"
                            "long a = time(nullptr);\n"
                            "long b = clock();\n")
        check(got == [], "suppression: allow-file covers every line",
              f"got {got}")
        # The #else branch of `#if PP_OBS` is the OFF build: flagged.
        got = _lint_snippet(tmpdir, "src/core/obs_else.cpp",
                            "#if PP_OBS\n"
                            "void a() { obs::bump(x); }\n"
                            "#else\n"
                            "void a() { obs::bump(x); }\n"
                            "#endif\n")
        check(got == [("R3", 4)],
              "regions: #else of `#if PP_OBS` is the OFF build",
              f"got {got}")
        # Raw strings swallow would-be tokens.
        got = _lint_snippet(tmpdir, "src/core/raw_string.cpp",
                            'const char* j = R"json({"x": "time(now)"})json";\n'
                            "long t = time(nullptr);\n")
        check(got == [("R1", 2)],
              "tokenizer: raw strings are single tokens",
              f"got {got}")
        # R5 path scoping: the same accumulation outside runner/obs is not
        # this rule's business.
        body = ("struct S { double acc = 0; "
                "void fold(double x) { acc += x; } };\n")
        in_runner = _lint_snippet(tmpdir, "src/runner/acc.cpp", body)
        in_analysis = _lint_snippet(tmpdir, "src/analysis/acc.cpp", body)
        check(in_runner == [("R5", 1)] and in_analysis == [],
              "R5: scoped to the cross-thread-merged layers",
              f"runner={in_runner} analysis={in_analysis}")
    finally:
        shutil.rmtree(tmpdir)


def main():
    test_bad_corpus()
    test_bad_corpus_is_exhaustive()
    test_good_corpus()
    test_suppression_round_trip()
    test_tokenizer_edges()
    if _failures:
        print(f"\ntest_poprank_lint: {len(_failures)} FAILURE(S)")
        for f in _failures:
            print(f"  - {f}")
        return 1
    print("\ntest_poprank_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
