// Good fixture: a self-contained header — #pragma once and a direct
// include for every std:: symbol used.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace pp {

struct FixtureRow {
  std::string label;
  std::vector<double> samples;
  std::unique_ptr<FixtureRow> next;
};

inline void check_row(const FixtureRow& row, unsigned long expected) {
  // Pure invariant expressions are fine inside assert macros.
  PP_ASSERT(row.samples.size() == expected);
  PP_DCHECK(!row.label.empty());
}

}  // namespace pp
