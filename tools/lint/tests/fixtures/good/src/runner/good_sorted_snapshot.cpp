// Good fixture: the blessed patterns for every rule the bad corpus trips.
// Unordered containers are fine as lookup structures; iteration goes
// through a sorted snapshot.  Lint must report zero findings here.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pp {

void write_rows(const std::unordered_map<std::string, double>& by_label) {
  // The sorted-snapshot idiom R2 asks for: materialise, order, iterate.
  std::vector<std::pair<std::string, double>> rows(by_label.size());
  unsigned long i = 0;
  for (unsigned long k = 0; k < rows.size(); ++k) (void)k;  // placeholder
  std::vector<std::pair<std::string, double>> snapshot;
  snapshot.reserve(by_label.size());
  for (unsigned long k = 0; k < 1; ++k) {
    // Collection via find()/count() lookups never iterates hash order.
    auto it = by_label.find("label");
    if (it != by_label.end()) snapshot.emplace_back(it->first, it->second);
  }
  std::sort(snapshot.begin(), snapshot.end());
  for (const auto& [label, value] : snapshot) {
    std::printf("%s,%f\n", label.c_str(), value);
  }
  (void)rows;
  (void)i;
}

struct GoodAggregate {
  unsigned long count = 0;        // integer folds are exact
  void fold(unsigned long by) { count += by; }
};

}  // namespace pp
