// Good fixture: real violations silenced by suppression comments — the
// round-trip test strips these comments and asserts the findings reappear.
// Etiquette: every allow states its reason after the colon.
namespace pp {

struct Throughput {
  double wall_seconds = 0;

  void fold(double dt) {
    // poprank-lint: allow(R5): wall-clock bookkeeping, outside the determinism contract
    wall_seconds += dt;
  }
};

long stamp() {
  long t = time(nullptr);  // poprank-lint: allow(R1): artifact file naming only, never read by a trial
  return t;
}

}  // namespace pp
