// Good fixture: obs instrumentation through the macro layer and the
// `#if PP_OBS` escape hatch — the two shapes R3 blesses.
namespace pp {

void hot_loop(unsigned long interactions, unsigned long skip) {
  PP_OBS_ADD(kNullSkips, skip);
  PP_OBS_SKETCH(kNullSkipGap, skip);
  PP_OBS_INC(kProductiveSteps);
  PP_OBS_TRACE_STEP(interactions);
}

void measured_region() {
  PP_OBS_SPAN("fixture-span");
#if PP_OBS
  // Inside the ON branch bare calls are fine: the OFF build never sees
  // these tokens.
  obs::bump(obs::Counter::kProductiveSteps);
  if (obs::active()) {
    obs::record(obs::Sketch::kGroupSize, 7);
  }
#endif
}

}  // namespace pp
