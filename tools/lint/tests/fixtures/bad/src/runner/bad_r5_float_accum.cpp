// R5 fixture: ad-hoc float/double accumulation in the cross-thread-merged
// layer (this fixture lives under src/runner/, where the rule applies).
namespace pp {

struct BadAggregate {
  double total_time = 0;
  float total_weight = 0;
  unsigned long count = 0;  // integer accumulation is fine

  void fold(double t, float w) {
    total_time += t;    // line 11: double accumulation
    total_weight += w;  // line 12: float accumulation
    ++count;            // clean: no finding
  }
};

}  // namespace pp
