// R2 fixture: hash-ordered iteration in a file that writes result rows.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace pp {

using Index = std::unordered_map<unsigned long, unsigned>;

void write_rows(const std::unordered_map<std::string, double>& by_label,
                const std::unordered_set<unsigned>& seen, const Index& idx) {
  for (const auto& [label, value] : by_label) {  // line 13: range-for
    std::printf("%s,%f\n", label.c_str(), value);
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // line 16: .begin()
    std::printf("%u\n", *it);
  }
  for (const auto& [key, entry] : idx) {  // line 19: range-for via alias
    std::printf("%lu,%u\n", key, entry);
  }
}

}  // namespace pp
