// R4 fixture: side-effecting expressions inside assert-style macros.
// PP_DCHECK compiles out under NDEBUG, so each of these makes Debug and
// Release builds diverge.
#include <vector>

namespace pp {

void check_and_mutate(std::vector<unsigned>& v, unsigned& cursor) {
  PP_DCHECK(++cursor < v.size());      // line 9: '++' inside PP_DCHECK
  PP_ASSERT(v.back() == 0);            // clean: no finding
  PP_ASSERT_MSG(cursor = 0, "reset");  // line 11: assignment inside assert
  assert(v.push_back(1), true);        // line 12: mutating call
}

}  // namespace pp
