// R1 fixture: every banned nondeterminism source the rule must catch.
// Expected findings (rule, line) are asserted by test_poprank_lint.py —
// keep the line numbers below in sync with EXPECTED there.
#include <cstdlib>

namespace pp {

unsigned bad_seed() {
  unsigned s = static_cast<unsigned>(std::rand());  // line 9: std::rand
  std::srand(s);                                    // line 10: srand
  return s;
}

unsigned bad_entropy() {
  std::random_device rd;  // line 15: random_device
  std::mt19937 gen(rd()); // line 16: mt19937
  return gen();
}

long bad_clock() {
  long t = time(nullptr);  // line 21: time()
  return t + clock();      // line 22: clock()
}

double bad_chrono() {
  auto now = std::chrono::steady_clock::now();  // line 26: chrono+steady_clock
  return static_cast<double>(now.time_since_epoch().count());
}

}  // namespace pp
