// R4 fixture: a header that is not self-contained — no `#pragma once`
// (finding pinned to line 1) and two std:: symbols used without their
// direct includes (<vector> arrives only transitively in real offenders;
// here it is simply absent).
#include <string>

namespace pp {

struct FixtureRow {
  std::string label;
  std::vector<double> samples;           // line 11: std::vector, no <vector>
  std::unique_ptr<FixtureRow> next;      // line 12: std::unique_ptr, no <memory>
};

}  // namespace pp
