// R3 fixture: bare obs:: hook call sites that would survive a
// POPRANK_OBS=OFF build's token inspection.  The `#if PP_OBS` block and the
// OFF `#else` branch pin the region tracker's polarity: the true-branch is
// exempt, the else-branch (which IS the OFF build) is not.
namespace pp {

void hot_loop(unsigned long interactions) {
  obs::bump(obs::Counter::kProductiveSteps);  // line 8: bare bump
  obs::record(obs::Sketch::kNullSkipGap, 3);  // line 9: bare record
  obs::trace_step(interactions);              // line 10: bare trace_step
}

void spans() {
  obs::ScopedSpan span("fixture-span");  // line 14: bare ScopedSpan
#if PP_OBS
  obs::trace_instant("guarded");  // inside #if PP_OBS: NOT a finding
#else
  obs::trace_instant("off-branch");  // line 18: the OFF build would keep this
#endif
}

}  // namespace pp
