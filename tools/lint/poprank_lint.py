#!/usr/bin/env python3
"""poprank_lint — the project's determinism & concurrency static-analysis engine.

The repo's core scientific claim is that the same (seed, trials) produces
bit-identical verdicts across 1/2/8 threads and across machines.  Nothing in
the compiler enforces that: one `std::rand()` in a scheduler, one range-for
over an `unordered_map` into a sink row, or one obs hook that survives a
POPRANK_OBS=OFF build silently breaks it.  This linter makes those invariants
machine-checked at analysis time, before any trial runs.

Rules (see README "Static analysis & determinism guarantees" for the table):

  R1  banned-nondeterminism   No ambient randomness (std::rand, srand,
      random_device, mt19937, ...) anywhere in src/ — all randomness flows
      through Rng / the seed streams.  No wall-clock reads (time(), clock(),
      std::chrono and its clocks) outside src/obs/, the one layer documented
      as non-deterministic; justified uses elsewhere carry an allow comment.
  R2  unordered-iteration     No range-for / .begin() iteration over
      std::unordered_map / std::unordered_set — hash iteration order is not
      part of the determinism contract.  Iterate a sorted snapshot, or
      allow() with a written justification.
  R3  bare-obs-hook           Every obs:: *hook* call site (bump, record,
      trace_step, trace_instant, ScopedSpan) outside src/obs/ must go
      through the PP_OBS_* macro wrappers or sit inside an `#if PP_OBS`
      region, so the OFF build is provably hook-free by token inspection.
  R4  header-hygiene          Headers are self-contained: `#pragma once`
      present, and every std:: symbol used maps to a directly-#included
      standard header.  Assert-style macros (PP_ASSERT / PP_ASSERT_MSG /
      PP_DCHECK / assert) must not contain side-effecting expressions —
      PP_DCHECK compiles out under NDEBUG, so a side effect there makes
      Debug and Release diverge.
  R5  float-accumulation      No float/double compound accumulation in the
      cross-thread-merged layers (src/runner/, src/obs/) outside
      RunningStat — ad-hoc floating-point folds are where merge-order
      sensitivity sneaks in.

Suppressions:

  // poprank-lint: allow(R1)            — this line, or the next code line
  // poprank-lint: allow(R1,R4): why    — multiple rules, optional reason
  // poprank-lint: allow-file(R1)       — the whole file

Suppression etiquette: always state the reason after the colon; an allow
without a justification is a review flag, not a free pass.

Stdlib-only on purpose, like bench/check_bench_regression.py and
bench/check_obs_artifacts.py: it runs on any CI runner with a bare python3.

Usage:
  poprank_lint.py src [more paths...]          lint a tree (exit 1 on findings)
  poprank_lint.py --rules R1,R3 src            subset of rules
  poprank_lint.py --list-rules                 print the rule table
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

# A token is (kind, text, line); kinds: 'id', 'num', 'str', 'chr', 'op'.
# Comments and preprocessor directives are captured separately — comments
# feed the suppression scanner, directives feed the include/`#if PP_OBS`
# trackers — and never appear in the code-token stream.

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")

# Multi-character operators, longest first so e.g. '>>=' wins over '>>'.
_OPS3 = ("<<=", ">>=", "...", "->*")
_OPS2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
         "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


class SourceFile:
    """One tokenized translation unit plus the side tables the rules use."""

    def __init__(self, path, text):
        self.path = path
        # Normalized with forward slashes so path filters are portable.
        self.norm_path = "/" + os.path.abspath(path).replace(os.sep, "/").lstrip("/")
        self.text = text
        self.lines = text.splitlines()
        self.tokens = []       # code tokens: (kind, text, line)
        self.comments = []     # (line, text) — text includes // or /* */
        self.directives = []   # (line, logical_text) — continuations joined
        self.obs_guarded = set()   # line numbers inside an `#if PP_OBS` branch
        self._tokenize()
        self._scan_suppressions()

    # -- raw scan ----------------------------------------------------------

    def _tokenize(self):
        text = self.text
        i, n, line = 0, len(text), 1
        at_line_start = True  # only whitespace seen since the last newline
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                i += 1
                at_line_start = True
                continue
            if c in " \t\r\f\v":
                i += 1
                continue
            # Comments.
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                j = text.find("\n", i)
                j = n if j < 0 else j
                self.comments.append((line, text[i:j]))
                i = j
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                body = text[i : j + 2]
                self.comments.append((line, body))
                line += body.count("\n")
                i = j + 2
                continue
            # Preprocessor directive: '#' first on the line; consume the
            # logical line including backslash continuations.
            if c == "#" and at_line_start:
                start_line = line
                parts = []
                while True:
                    j = text.find("\n", i)
                    j = n if j < 0 else j
                    seg = text[i:j]
                    i = j + 1 if j < n else n
                    line += 1
                    if seg.rstrip().endswith("\\"):
                        parts.append(seg.rstrip()[:-1])
                        if i >= n:
                            break
                    else:
                        parts.append(seg)
                        break
                self.directives.append((start_line, " ".join(parts)))
                at_line_start = True
                continue
            at_line_start = False
            # Raw string literal R"delim( ... )delim".
            if c == "R" and i + 1 < n and text[i + 1] == '"':
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i + m.end())
                    j = n - len(close) if j < 0 else j
                    body = text[i : j + len(close)]
                    self.tokens.append(("str", body, line))
                    line += body.count("\n")
                    i = j + len(close)
                    continue
            # String / char literals.
            if c == '"' or c == "'":
                j = i + 1
                while j < n and text[j] != c:
                    j += 2 if text[j] == "\\" else 1
                j = min(j, n - 1)
                self.tokens.append(
                    ("str" if c == '"' else "chr", text[i : j + 1], line))
                i = j + 1
                continue
            # Identifiers / keywords.
            if c in _ID_START:
                j = i + 1
                while j < n and text[j] in _ID_CONT:
                    j += 1
                self.tokens.append(("id", text[i:j], line))
                i = j
                continue
            # Numbers (coarse: consume alnum, dots, and exponent signs).
            if c.isdigit():
                j = i + 1
                while j < n and (text[j] in _ID_CONT or text[j] == "." or
                                 (text[j] in "+-" and text[j - 1] in "eEpP")):
                    j += 1
                self.tokens.append(("num", text[i:j], line))
                i = j
                continue
            # Operators, longest match first.
            for op in _OPS3:
                if text.startswith(op, i):
                    self.tokens.append(("op", op, line))
                    i += len(op)
                    break
            else:
                for op in _OPS2:
                    if text.startswith(op, i):
                        self.tokens.append(("op", op, line))
                        i += len(op)
                        break
                else:
                    self.tokens.append(("op", c, line))
                    i += 1
        self._track_obs_regions()

    def _track_obs_regions(self):
        """Marks line numbers whose code sits in an `#if PP_OBS` true-branch.

        The tracker is deliberately literal: only a branch whose condition is
        exactly `PP_OBS` counts as guarded, and `#else` / `#elif` flip it off
        (the else-branch of `#if PP_OBS` is the OFF build — obs hooks there
        are exactly what R3 must flag).
        """
        events = []  # (line, kind, cond)
        for ln, d in self.directives:
            m = re.match(r"\s*#\s*(if|ifdef|ifndef|elif|else|endif)\b(.*)", d)
            if m:
                events.append((ln, m.group(1), m.group(2).strip()))
        stack = []  # each frame: currently-guarded bool
        ev = 0
        for ln in range(1, len(self.lines) + 2):
            while ev < len(events) and events[ev][0] == ln:
                _, kind, cond = events[ev]
                ev += 1
                if kind in ("if", "ifdef", "ifndef"):
                    stack.append(kind == "if" and cond == "PP_OBS")
                elif kind in ("elif", "else"):
                    if stack:
                        stack[-1] = False
                elif kind == "endif":
                    if stack:
                        stack.pop()
            if any(stack):
                self.obs_guarded.add(ln)

    # -- suppressions ------------------------------------------------------

    _ALLOW_RE = re.compile(
        r"poprank-lint:\s*(allow|allow-file)\(([A-Za-z0-9_,\s]+)\)")

    def _scan_suppressions(self):
        self.allow_lines = {}   # line -> set of rule ids allowed there
        self.allow_file = set()
        for ln, ctext in self.comments:
            m = self._ALLOW_RE.search(ctext)
            if not m:
                continue
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if m.group(1) == "allow-file":
                self.allow_file |= rules
                continue
            # A whole-line comment blesses the next code line too; an
            # end-of-line comment blesses its own line.  Blessing both is
            # harmless and keeps the scanner trivial.
            for target in (ln, ln + self._comment_height(ctext)):
                self.allow_lines.setdefault(target, set()).update(rules)

    @staticmethod
    def _comment_height(ctext):
        return ctext.count("\n") + 1

    def suppressed(self, rule_id, line):
        if rule_id in self.allow_file or "all" in self.allow_file:
            return True
        allowed = self.allow_lines.get(line, set())
        return rule_id in allowed or "all" in allowed

    # -- helpers the rules share ------------------------------------------

    def code_ids(self):
        """(index, name, line) for every identifier token."""
        for idx, (kind, text, line) in enumerate(self.tokens):
            if kind == "id":
                yield idx, text, line

    def prev_op(self, idx, op):
        """True when the nearest previous token is the operator `op`."""
        return idx > 0 and self.tokens[idx - 1][:2] == ("op", op)

    def next_is(self, idx, kind, text):
        return (idx + 1 < len(self.tokens)
                and self.tokens[idx + 1][0] == kind
                and self.tokens[idx + 1][1] == text)

    def skip_template_args(self, idx):
        """Given tokens[idx] == '<', returns the index just past the matching
        close, treating '>>' as two closers.  Returns idx when unbalanced."""
        depth = 0
        j = idx
        while j < len(self.tokens):
            kind, text, _ = self.tokens[j]
            if kind == "op":
                if text == "<":
                    depth += 1
                elif text == ">":
                    depth -= 1
                elif text == ">>":
                    depth -= 2
                elif text == "<<":
                    depth += 2
                elif text in (";", "{", "}"):
                    return idx  # gave up: not a template argument list
                if depth <= 0:
                    return j + 1
            j += 1
        return idx

    def balanced_paren_span(self, idx):
        """Given tokens[idx] == '(', returns index just past the match."""
        depth = 0
        j = idx
        while j < len(self.tokens):
            kind, text, _ = self.tokens[j]
            if kind == "op":
                if text == "(":
                    depth += 1
                elif text == ")":
                    depth -= 1
                    if depth == 0:
                        return j + 1
            j += 1
        return len(self.tokens)


# --------------------------------------------------------------------------
# Rule framework
# --------------------------------------------------------------------------

class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class: subclasses set `rule_id`, `name`, `doc` and implement
    check(src) -> iterable of (line, message)."""

    rule_id = "R?"
    name = "unnamed"
    doc = ""

    def applies(self, src):  # path filter; default everywhere
        return True

    def check(self, src):
        raise NotImplementedError


def _in_dir(src, fragment):
    return fragment in src.norm_path


# -- R1 --------------------------------------------------------------------

class BannedNondeterminism(Rule):
    rule_id = "R1"
    name = "banned-nondeterminism"
    doc = ("ambient randomness is banned everywhere; wall-clock reads are "
           "banned outside src/obs/ (all randomness flows through Rng / the "
           "seed streams)")

    RANDOMNESS = {
        "rand", "srand", "drand48", "lrand48", "random_shuffle",
        "random_device", "mt19937", "mt19937_64", "default_random_engine",
        "minstd_rand", "knuth_b",
    }
    # Only flagged when called: avoids ids that merely contain the word.
    CLOCK_CALLS = {"time", "clock", "gettimeofday", "clock_gettime",
                   "localtime", "gmtime"}
    CLOCK_IDS = {"chrono", "system_clock", "steady_clock",
                 "high_resolution_clock"}

    def check(self, src):
        clock_exempt = _in_dir(src, "/src/obs/")
        for idx, name, line in src.code_ids():
            if name in self.RANDOMNESS:
                yield (line,
                       f"banned nondeterminism source '{name}' — draw from "
                       "Rng / seed_stream instead")
            elif not clock_exempt:
                if name in self.CLOCK_IDS:
                    yield (line,
                           f"wall-clock source '{name}' outside src/obs/ — "
                           "results must be pure functions of (spec, seed)")
                elif (name in self.CLOCK_CALLS and src.next_is(idx, "op", "(")
                      and not src.prev_op(idx, ".")
                      and not src.prev_op(idx, "->")):
                    yield (line,
                           f"wall-clock call '{name}()' outside src/obs/ — "
                           "results must be pure functions of (spec, seed)")


# -- R2 --------------------------------------------------------------------

class UnorderedIteration(Rule):
    rule_id = "R2"
    name = "unordered-iteration"
    doc = ("no range-for / .begin() iteration over std::unordered_map / "
           "unordered_set — hash order is nondeterministic; iterate a "
           "sorted snapshot")

    UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
                 "unordered_multiset"}

    def _collect_unordered_names(self, src):
        """Variables (and using-aliases) declared with an unordered type."""
        names, alias_types = set(), set()
        toks = src.tokens
        i = 0
        while i < len(toks):
            kind, text, _ = toks[i]
            if kind == "id" and (text in self.UNORDERED or text in alias_types):
                j = i + 1
                if j < len(toks) and toks[j][:2] == ("op", "<"):
                    j = src.skip_template_args(j)
                # Skip ref/pointer/cv decoration between type and name.
                while j < len(toks) and toks[j][:2] in (
                        ("op", "&"), ("op", "*"), ("id", "const")):
                    j += 1
                if j < len(toks) and toks[j][0] == "id":
                    # `using Alias = std::unordered_map<...>` registers the
                    # alias instead (handled below); a plain id here is a
                    # declared variable / parameter / field.
                    names.add(toks[j][1])
            if kind == "id" and text == "using" and i + 2 < len(toks) \
                    and toks[i + 1][0] == "id" \
                    and toks[i + 2][:2] == ("op", "="):
                # Look ahead for an unordered type on the right-hand side.
                j = i + 3
                while j < len(toks) and toks[j][:2] != ("op", ";"):
                    if toks[j][0] == "id" and toks[j][1] in self.UNORDERED:
                        alias_types.add(toks[i + 1][1])
                        break
                    j += 1
            i += 1
        return names

    def check(self, src):
        names = self._collect_unordered_names(src)
        toks = src.tokens
        for i, (kind, text, line) in enumerate(toks):
            # Range-for: `for ( decl : range )` — inspect the range tokens.
            if kind == "id" and text == "for" and src.next_is(i, "op", "("):
                end = src.balanced_paren_span(i + 1)
                colon = None
                for j in range(i + 2, end - 1):
                    if toks[j][:2] == ("op", ":"):
                        colon = j
                        break
                if colon is not None:
                    for j in range(colon + 1, end - 1):
                        if toks[j][0] == "id" and (toks[j][1] in names
                                                   or toks[j][1] in self.UNORDERED):
                            yield (line,
                                   f"range-for over unordered container "
                                   f"'{toks[j][1]}' — hash iteration order "
                                   "is nondeterministic; iterate a sorted "
                                   "snapshot")
                            break
            # Iterator loop: unordered.begin() / cbegin().
            if kind == "id" and text in ("begin", "cbegin") \
                    and src.next_is(i, "op", "(") \
                    and i >= 2 and toks[i - 1][:2] == ("op", ".") \
                    and toks[i - 2][0] == "id" and toks[i - 2][1] in names:
                yield (line,
                       f"iterator over unordered container '{toks[i - 2][1]}'"
                       " — hash iteration order is nondeterministic; iterate "
                       "a sorted snapshot")


# -- R3 --------------------------------------------------------------------

class BareObsHook(Rule):
    rule_id = "R3"
    name = "bare-obs-hook"
    doc = ("obs:: hook call sites outside src/obs/ must use the PP_OBS_* "
           "macros or sit inside `#if PP_OBS`, so POPRANK_OBS=OFF builds "
           "are provably hook-free")

    HOOKS = {"bump", "record", "trace_step", "trace_instant", "ScopedSpan"}

    def applies(self, src):
        return _in_dir(src, "/src/") and not _in_dir(src, "/src/obs/")

    def check(self, src):
        toks = src.tokens
        for i, (kind, text, line) in enumerate(toks):
            if kind == "id" and text in self.HOOKS \
                    and src.prev_op(i, "::") \
                    and i >= 2 and toks[i - 2][:2] == ("id", "obs") \
                    and line not in src.obs_guarded:
                yield (line,
                       f"bare obs::{text} hook outside the PP_OBS macro "
                       "layer — use PP_OBS_INC/ADD/SKETCH/SPAN/TRACE_STEP "
                       "or guard with `#if PP_OBS`")


# -- R4 --------------------------------------------------------------------

class HeaderHygiene(Rule):
    rule_id = "R4"
    name = "header-hygiene"
    doc = ("headers are self-contained (#pragma once + direct includes for "
           "every std:: symbol used); assert-style macros must not contain "
           "side-effecting expressions")

    # std:: symbol -> the standard header that declares it.  Conservative on
    # purpose: only symbols with one unambiguous home are listed.
    STD_HEADER = {
        "vector": "vector", "string": "string", "string_view": "string_view",
        "array": "array", "span": "span", "deque": "deque",
        "mutex": "mutex", "lock_guard": "mutex", "unique_lock": "mutex",
        "scoped_lock": "mutex", "atomic": "atomic", "thread": "thread",
        "condition_variable": "condition_variable",
        "function": "functional", "optional": "optional",
        "variant": "variant", "map": "map", "set": "set",
        "unordered_map": "unordered_map", "unordered_set": "unordered_set",
        "unique_ptr": "memory", "shared_ptr": "memory",
        "make_unique": "memory", "make_shared": "memory",
        "pair": "utility", "move": "utility", "forward": "utility",
        "exchange": "utility", "swap": "utility",
        "min": "algorithm", "max": "algorithm", "sort": "algorithm",
        "fill": "algorithm", "copy": "algorithm", "lower_bound": "algorithm",
        "upper_bound": "algorithm", "accumulate": "numeric",
        "iota": "numeric", "numeric_limits": "limits",
        "uint8_t": "cstdint", "uint16_t": "cstdint", "uint32_t": "cstdint",
        "uint64_t": "cstdint", "int8_t": "cstdint", "int16_t": "cstdint",
        "int32_t": "cstdint", "int64_t": "cstdint",
        "printf": "cstdio", "fprintf": "cstdio", "snprintf": "cstdio",
        "abort": "cstdlib", "exit": "cstdlib", "getenv": "cstdlib",
        "sqrt": "cmath", "log": "cmath", "log2": "cmath", "exp": "cmath",
        "pow": "cmath", "floor": "cmath", "ceil": "cmath", "fabs": "cmath",
        "bit_width": "bit", "popcount": "bit", "countr_zero": "bit",
        "to_string": "string", "ostream": "ostream", "istream": "istream",
        "ofstream": "fstream", "ifstream": "fstream", "fstream": "fstream",
        "runtime_error": "stdexcept", "logic_error": "stdexcept",
    }
    # Headers that also satisfy a symbol (e.g. <iosfwd> declares the stream
    # types well enough for references and members-by-pointer).
    ALT_SATISFIES = {
        "ostream": {"iosfwd", "ostream", "iostream", "sstream", "fstream"},
        "istream": {"iosfwd", "istream", "iostream", "sstream", "fstream"},
        "string": {"string"},
    }

    ASSERT_MACROS = {"PP_ASSERT", "PP_ASSERT_MSG", "PP_DCHECK", "assert"}
    MUTATORS = {"push_back", "pop_back", "emplace_back", "emplace", "insert",
                "erase", "clear", "reset", "push", "pop"}
    SIDE_EFFECT_OPS = {"++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=",
                       "|=", "^=", "<<=", ">>="}

    _INCLUDE_RE = re.compile(r'\s*#\s*include\s*[<"]([^>"]+)[>"]')

    def check(self, src):
        is_header = src.path.endswith((".hpp", ".h", ".hh"))
        if is_header:
            yield from self._check_header(src)
        yield from self._check_asserts(src)

    def _check_header(self, src):
        if not any(re.match(r"\s*#\s*pragma\s+once\b", d)
                   for _, d in src.directives):
            yield (1, "header lacks `#pragma once`")
        includes = set()
        for _, d in src.directives:
            m = self._INCLUDE_RE.match(d)
            if m:
                includes.add(m.group(1))
        reported = set()
        toks = src.tokens
        for i, (kind, text, line) in enumerate(toks):
            if kind != "id" or text not in self.STD_HEADER:
                continue
            if not (src.prev_op(i, "::") and i >= 2
                    and toks[i - 2][:2] == ("id", "std")):
                continue
            need = self.STD_HEADER[text]
            satisfies = self.ALT_SATISFIES.get(need, {need})
            if includes & satisfies or need in reported:
                continue
            reported.add(need)
            yield (line,
                   f"header uses std::{text} but does not include <{need}> "
                   "directly (headers must be self-contained)")

    def _check_asserts(self, src):
        toks = src.tokens
        for i, (kind, text, line) in enumerate(toks):
            if kind != "id" or text not in self.ASSERT_MACROS:
                continue
            if not src.next_is(i, "op", "("):
                continue
            end = src.balanced_paren_span(i + 1)
            for j in range(i + 2, end - 1):
                tkind, ttext, tline = toks[j]
                offending = None
                if tkind == "op" and ttext in self.SIDE_EFFECT_OPS:
                    offending = f"'{ttext}'"
                elif tkind == "id" and ttext in self.MUTATORS \
                        and src.next_is(j, "op", "(") \
                        and (src.prev_op(j, ".") or src.prev_op(j, "->")):
                    offending = f"mutating call '.{ttext}()'"
                if offending:
                    yield (tline,
                           f"side-effecting expression {offending} inside "
                           f"{text}(...) — invariant checks must be pure "
                           "(PP_DCHECK compiles out under NDEBUG)")
                    break


# -- R5 --------------------------------------------------------------------

class FloatAccumulation(Rule):
    rule_id = "R5"
    name = "float-accumulation"
    doc = ("no float/double compound accumulation in the cross-thread-merged "
           "layers (src/runner/, src/obs/) outside RunningStat — ad-hoc "
           "floating-point folds are merge-order-sensitive")

    ACCUM_OPS = {"+=", "-=", "*=", "/="}

    def applies(self, src):
        return _in_dir(src, "/src/runner/") or _in_dir(src, "/src/obs/")

    def _collect_float_names(self, src):
        names = set()
        toks = src.tokens
        for i, (kind, text, _) in enumerate(toks):
            if kind == "id" and text in ("float", "double"):
                j = i + 1
                while j < len(toks) and toks[j][:2] in (
                        ("op", "&"), ("op", "*"), ("id", "const")):
                    j += 1
                # `double name` that is not a function declaration
                # (`double name(` is a return type, unless it ends `= x(...)`
                # — close enough for a lint).
                if j < len(toks) and toks[j][0] == "id" \
                        and not src.next_is(j, "op", "("):
                    names.add(toks[j][1])
        return names

    def check(self, src):
        names = self._collect_float_names(src)
        toks = src.tokens
        for i, (kind, text, line) in enumerate(toks):
            if kind == "op" and text in self.ACCUM_OPS and i >= 1 \
                    and toks[i - 1][0] == "id" and toks[i - 1][1] in names:
                yield (line,
                       f"float/double accumulation '{toks[i - 1][1]} {text}' "
                       "in a cross-thread-merged layer — fold through "
                       "RunningStat (analysis/stats.hpp) instead")


ALL_RULES = [BannedNondeterminism(), UnorderedIteration(), BareObsHook(),
             HeaderHygiene(), FloatAccumulation()]


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")


def collect_files(paths):
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs.sort()
                for f in sorted(files):
                    if f.endswith(CXX_EXTENSIONS):
                        out.append(os.path.join(root, f))
        else:
            raise FileNotFoundError(p)
    return out


def lint_file(path, rules):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            src = SourceFile(path, f.read())
    except OSError as e:
        return [Finding(path, 0, "IO", str(e))]
    findings, seen = [], set()
    for rule in rules:
        if not rule.applies(src):
            continue
        for line, message in rule.check(src):
            key = (line, rule.rule_id, message)
            if key in seen or src.suppressed(rule.rule_id, line):
                continue
            seen.add(key)
            findings.append(Finding(path, line, rule.rule_id, message))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def lint_paths(paths, rules=None):
    rules = ALL_RULES if rules is None else rules
    findings = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, rules))
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="poprank determinism & concurrency lint")
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--rules", default="",
                    help="comma-separated subset, e.g. R1,R3 (default: all)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(f"{r.rule_id}  {r.name}\n    {r.doc}")
        return 0
    if not args.paths:
        ap.error("no paths given (try: poprank_lint.py src)")

    rules = ALL_RULES
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in ALL_RULES}
        if unknown:
            ap.error(f"unknown rules: {', '.join(sorted(unknown))}")
        rules = [r for r in ALL_RULES if r.rule_id in wanted]

    try:
        findings = lint_paths(args.paths, rules)
    except FileNotFoundError as e:
        ap.error(f"no such path: {e}")
    for f in findings:
        print(f)
    if not args.quiet:
        n_files = len(collect_files(args.paths))
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"poprank_lint: {n_files} file(s), {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
